// Command chaosbench runs the paper's microbenchmark figures on a faulted
// machine and checks that PREMA survives: with DMCS reliable delivery on,
// every work unit must compute exactly once and every mobile object must end
// resident on exactly one processor, no matter how lossy the network is.
//
// Usage:
//
//	chaosbench [-system prema-implicit] [-figs 3,4,5,6] \
//	           [-procs 32] [-units-per-proc 32] [-shards S] \
//	           [-partition roundrobin|blocked|loaded] [-wire] \
//	           [-fault-plan "drop=0.2,dup=0.1"] [-fault-seed 1] \
//	           [-rto 50ms] [-backend sim|real|dist] [-timescale 1e-2] [-spin] \
//	           [-nodes N -dist-listen HOST:PORT] [-premad PATH] [-dist-attach] \
//	           [-recover] [-checkpoint-interval 1s] [-lease-timeout 500ms] \
//	           [-trace trace.json] [-metrics metrics.txt]
//
// -backend=dist runs each leg of the triple as a full multi-process session:
// a coordinator in this command plus -nodes premad daemons (spawned per leg,
// or externally started with -dist-attach) connected by a TCP mesh. -nodes
// and -dist-listen are required together. The fault plan is shipped to every
// node and injected at its local substrate seam, so drops and duplications
// hit intra-node delivery on real processes while the reliable protocol
// repairs them; fail-stop clauses (and -recover) are in-process only, as are
// -wire, -trace, and -metrics.
//
// -wire interposes the binary wire codec (internal/wire) beneath the fault
// injector: every Send is encoded into a frame and delivered as a freshly
// decoded copy, so chaos runs additionally prove the reliable protocol holds
// when messages really are serialized rather than shared by pointer. The
// codec charges no substrate time; output is identical.
//
// -trace/-metrics record every run through internal/trace (the tracing
// decorator wraps outside the fault injector, so the stream shows the
// retransmissions the reliable protocol performed) and write one
// Perfetto-loadable Chrome trace / metrics rendering per run, suffixing
// figN.label (clean, reliable, faulted) before the file extension.
//
// For each figure scenario it runs three configurations:
//
//	clean      classic fire-and-forget DMCS, no faults (the baseline)
//	reliable   reliable delivery, no faults (protocol overhead measurement)
//	faulted    reliable delivery on the faulted machine (the chaos run)
//
// and reports makespans, the reliable-mode overhead on a fault-free network,
// retransmission counts, injected-fault counts, and the conservation check.
// A classic (unreliable) stack on the same fault plan would lose units; the
// point of the harness is that the reliable stack does not. Exits non-zero
// if any run fails conservation or the application outcome diverges from
// the clean run.
//
// The fault plan uses the internal/faulty syntax; see `-fault-plan ""` for a
// clean sweep or e.g. "drop=0.2,dup=0.1;stall:2@100s+20s" to freeze a
// processor mid-run.
//
// Fail-stop clauses ("crash:3@35s", optionally "recover:3@50s" for a rejoin)
// additionally need -recover, which arms the crash-recovery subsystem on the
// reliable and faulted legs: periodic object checkpoints (-checkpoint-interval,
// virtual time), heartbeat leases for failure detection (-lease-timeout; the
// real backend defaults to 250ms of wall clock), directory repair, and orphan
// re-homing. A crashed run then finishes with the clean run's outcome. With no
// crash in the plan, -recover leaves the reliable leg byte-identical: the
// checkpoint costs accrue silently and only hit the ledgers once a crash
// verdict fires. Processor 0 is the head node (it owns the completion counter)
// and cannot be crashed.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"prema/internal/bench"
	"prema/internal/dmcs"
	"prema/internal/faulty"
	"prema/internal/substrate"
	"prema/internal/trace"
)

func main() {
	system := flag.String("system", "prema-implicit", "PREMA system configuration (none, prema-explicit, prema-implicit)")
	figs := flag.String("figs", "3,4,5,6", "comma-separated paper figure scenarios to run")
	procs := flag.Int("procs", 32, "simulated processors")
	upp := flag.Int("units-per-proc", 32, "work units per processor")
	shards := flag.Int("shards", 1, "simulator backend: parallel event-loop shards per simulation (output is identical for any value)")
	partition := flag.String("partition", "roundrobin", "simulator backend: processor-to-shard placement strategy: roundrobin, blocked, or loaded (output is identical for any value)")
	planS := flag.String("fault-plan", "drop=0.2,dup=0.1", "fault plan (faulty syntax; \"none\" = clean)")
	faultSeed := flag.Int64("fault-seed", 1, "fault injector seed")
	rto := flag.Duration("rto", 50*time.Millisecond, "reliable-mode initial retransmission timeout")
	backend := flag.String("backend", "sim", "execution substrate: sim (deterministic) | real (goroutines) | dist (node processes over TCP)")
	nodes := flag.Int("nodes", 0, "dist backend: node process count (required with -backend=dist)")
	distListen := flag.String("dist-listen", "", "dist backend: coordinator listen address, host:port (required with -backend=dist; port 0 picks a free one)")
	premadPath := flag.String("premad", "", "dist backend: premad binary to spawn (default: next to this executable, then PATH)")
	distAttach := flag.Bool("dist-attach", false, "dist backend: do not spawn node daemons; externally started premads dial the coordinator (they must serve one session per run: three per figure)")
	timescale := flag.Float64("timescale", 1e-2, "real backend: wall seconds per virtual second")
	spin := flag.Bool("spin", false, "real backend: busy-wait instead of sleeping")
	wireOn := flag.Bool("wire", false, "run behind the serialization loopback (wire codec; output is identical)")
	recoverOn := flag.Bool("recover", false, "arm the crash-recovery subsystem on the reliable and faulted legs (required for crash/recover plan clauses)")
	ckptInterval := flag.Duration("checkpoint-interval", 0, "recovery: periodic object-checkpoint interval in virtual time (0 = default 1s)")
	leaseTimeout := flag.Duration("lease-timeout", 0, "recovery: heartbeat lease timeout in virtual time (0 = default: 500ms on sim, 250ms of wall clock on real)")
	traceOut := flag.String("trace", "", "write Chrome trace JSON per run (base path; figN.label is inserted before the extension)")
	metricsOut := flag.String("metrics", "", "write aggregated trace metrics per run (base path, same suffixing; .json = JSON)")
	traceRing := flag.Int("trace-ring", trace.DefaultRingCap, "per-processor trace ring capacity in events (rounded up to a power of two)")
	flag.Parse()

	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "chaosbench: unexpected arguments: %v\n", flag.Args())
		os.Exit(2)
	}
	if *procs < 1 || *upp < 1 {
		fmt.Fprintf(os.Stderr, "chaosbench: -procs and -units-per-proc must be positive (got %d, %d)\n", *procs, *upp)
		os.Exit(2)
	}
	if *rto <= 0 {
		fmt.Fprintf(os.Stderr, "chaosbench: -rto must be positive (got %v)\n", *rto)
		os.Exit(2)
	}
	if *timescale <= 0 {
		fmt.Fprintf(os.Stderr, "chaosbench: -timescale must be positive (got %g)\n", *timescale)
		os.Exit(2)
	}
	if *backend != "sim" && *backend != "real" && *backend != "dist" {
		fmt.Fprintf(os.Stderr, "chaosbench: unknown backend %q (want sim, real, or dist)\n", *backend)
		os.Exit(2)
	}
	isDist := *backend == "dist"
	if isDist {
		if *nodes < 1 || *distListen == "" {
			fmt.Fprintln(os.Stderr, "chaosbench: -backend=dist requires -nodes and -dist-listen together")
			os.Exit(2)
		}
		if *nodes > *procs {
			fmt.Fprintf(os.Stderr, "chaosbench: -nodes %d exceeds -procs %d (every node hosts at least one processor)\n", *nodes, *procs)
			os.Exit(2)
		}
		if *partition != "roundrobin" {
			fmt.Fprintln(os.Stderr, "chaosbench: -partition applies to the simulator backend only; use -backend=sim")
			os.Exit(2)
		}
		if !bench.WiredSystem(*system) {
			fmt.Fprintf(os.Stderr, "chaosbench: system %q is a cost model without a transport and is simulator-only; use -backend=sim\n", *system)
			os.Exit(2)
		}
		if *wireOn {
			fmt.Fprintln(os.Stderr, "chaosbench: -wire applies to the in-process backends; the distributed backend already serializes every remote message")
			os.Exit(2)
		}
		if *recoverOn {
			fmt.Fprintln(os.Stderr, "chaosbench: -recover (fail-stop crash recovery) is not supported on the distributed backend")
			os.Exit(2)
		}
		if *traceOut != "" || *metricsOut != "" {
			fmt.Fprintln(os.Stderr, "chaosbench: -trace and -metrics apply to the in-process backends; use premabench -backend=dist -trace for per-node timelines")
			os.Exit(2)
		}
	} else if *nodes != 0 || *distListen != "" || *premadPath != "" || *distAttach {
		fmt.Fprintln(os.Stderr, "chaosbench: -nodes, -dist-listen, -premad, and -dist-attach apply to the distributed backend only; use -backend=dist")
		os.Exit(2)
	}
	if *shards < 1 {
		fmt.Fprintf(os.Stderr, "chaosbench: -shards must be >= 1 (got %d)\n", *shards)
		os.Exit(2)
	}
	if *shards > 1 && *backend != "sim" {
		fmt.Fprintf(os.Stderr, "chaosbench: -shards applies to the simulator backend only; use -backend=sim\n")
		os.Exit(2)
	}
	if !bench.ValidPartition(*partition) {
		fmt.Fprintf(os.Stderr, "chaosbench: -partition must be one of %v (got %q)\n", bench.PartitionStrategies, *partition)
		os.Exit(2)
	}
	if *wireOn && !bench.WiredSystem(*system) {
		fmt.Fprintf(os.Stderr, "chaosbench: system %q is a cost model without a transport; -wire needs a PREMA configuration\n", *system)
		os.Exit(2)
	}
	plan, err := faulty.ParsePlan(*planS)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chaosbench:", err)
		os.Exit(2)
	}
	if *ckptInterval < 0 || *leaseTimeout < 0 {
		fmt.Fprintf(os.Stderr, "chaosbench: -checkpoint-interval and -lease-timeout must be >= 0 (got %v, %v)\n", *ckptInterval, *leaseTimeout)
		os.Exit(2)
	}
	if (len(plan.Crashes) > 0 || len(plan.Recovers) > 0) && !*recoverOn {
		fmt.Fprintf(os.Stderr, "chaosbench: the fault plan schedules a fail-stop; add -recover to make it survivable (crash/recover clauses require the recovery subsystem)\n")
		os.Exit(2)
	}
	if *recoverOn {
		if *shards > 1 {
			fmt.Fprintf(os.Stderr, "chaosbench: -recover requires a serial simulator; use -shards=1\n")
			os.Exit(2)
		}
		for _, c := range plan.Crashes {
			if c.Proc == 0 {
				fmt.Fprintf(os.Stderr, "chaosbench: cannot crash processor 0: it is the head node and owns the completion counter\n")
				os.Exit(2)
			}
			if c.Proc >= *procs {
				fmt.Fprintf(os.Stderr, "chaosbench: crash targets processor %d but the machine has only %d (0..%d)\n", c.Proc, *procs, *procs-1)
				os.Exit(2)
			}
		}
	}
	var specs []bench.FigureSpec
	for _, f := range strings.Split(*figs, ",") {
		id, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			fmt.Fprintf(os.Stderr, "chaosbench: bad figure %q in -figs\n", f)
			os.Exit(2)
		}
		spec, err := bench.FigureByID(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, "chaosbench:", err)
			os.Exit(2)
		}
		specs = append(specs, spec)
	}

	rel := dmcs.DefaultRelConfig()
	rel.RTO = substrate.FromDuration(*rto)

	if (*traceOut != "" || *metricsOut != "") && *traceRing < 1 {
		fmt.Fprintf(os.Stderr, "chaosbench: -trace-ring must be >= 1 (got %d)\n", *traceRing)
		os.Exit(2)
	}
	sink := traceSink{tracePath: *traceOut, metricsPath: *metricsOut, ring: *traceRing}

	failed := false
	for _, spec := range specs {
		w := bench.PaperWorkload(spec, *procs, *upp)
		w.Shards = *shards
		w.Partition = *partition
		w.Wire = *wireOn
		fmt.Printf("=== Figure %d scenario: imbalance %.0f%%, heavy = %.1fx light (procs=%d, units=%d, backend=%s) ===\n",
			spec.ID, spec.Imbalance*100, spec.Ratio, w.Procs, w.Units, *backend)
		sink.fig = spec.ID
		if isDist {
			opt := bench.DistOptions{Nodes: *nodes, Listen: *distListen, Premad: *premadPath, Attach: *distAttach}
			if !runDistTriple(w, *system, *planS, plan.Active(), *faultSeed, rel, *timescale, *spin, opt) {
				failed = true
			}
		} else {
			rec := recovOpts{on: *recoverOn, interval: substrate.FromDuration(*ckptInterval), lease: substrate.FromDuration(*leaseTimeout)}
			if !run(w, *system, plan, *faultSeed, rel, rec, *backend, *timescale, *spin, sink) {
				failed = true
			}
		}
		fmt.Println()
	}
	if failed {
		os.Exit(1)
	}
}

// traceSink carries the per-run trace/metrics export configuration.
type traceSink struct {
	tracePath   string
	metricsPath string
	ring        int
	fig         int
}

func (ts traceSink) active() bool { return ts.tracePath != "" || ts.metricsPath != "" }

// collector returns a fresh collector when exporting is on, nil otherwise.
func (ts traceSink) collector() *trace.Collector {
	if !ts.active() {
		return nil
	}
	return trace.NewCollector(ts.ring)
}

// write exports one labeled run's trace and metrics.
func (ts traceSink) write(label string, col *trace.Collector, r *bench.Result) bool {
	if col == nil {
		return true
	}
	suffix := fmt.Sprintf("fig%d.%s", ts.fig, label)
	if ts.tracePath != "" {
		path := trace.SuffixPath(ts.tracePath, suffix)
		if err := col.WriteChromeFile(path); err != nil {
			fmt.Fprintln(os.Stderr, "chaosbench:", err)
			return false
		}
		fmt.Printf("  wrote %s (%d events, %d dropped)\n", path, col.Total(), col.Dropped())
	}
	if ts.metricsPath != "" {
		path := trace.SuffixPath(ts.metricsPath, suffix)
		if err := trace.Summarize(col, r.Makespan).WriteFile(path); err != nil {
			fmt.Fprintln(os.Stderr, "chaosbench:", err)
			return false
		}
		fmt.Printf("  wrote %s\n", path)
	}
	return true
}

// runDistTriple is the clean / reliable / faulted triple on the distributed
// backend: three full multi-process sessions (the node daemons are spawned —
// or, with -dist-attach, dial in — once per leg). Fault injection happens at
// each node's substrate seam, so the injected-fault counts stay node-local;
// the cross-process ground truth reported here is conservation and the unit
// totals merged from every node's partial result.
func runDistTriple(w bench.Workload, system, planS string, planActive bool, faultSeed int64, rel dmcs.RelConfig, timescale float64, spin bool, opt bench.DistOptions) bool {
	ok := true
	runOne := func(label string, reliable bool, faultPlan string) *bench.Result {
		spec := bench.NewDistSpec(system, w)
		spec.TimeScale = timescale
		spec.Spin = spin
		spec.Reliable = reliable
		if reliable {
			spec.RTO = rel.RTO
		}
		spec.FaultPlan = faultPlan
		spec.FaultSeed = faultSeed
		r, err := bench.RunDist(spec, opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, "chaosbench:", err)
			return nil
		}
		report(label, r, faulty.Stats{}, &ok)
		return r
	}
	clean := runOne("clean", false, "")
	if clean == nil {
		return false
	}
	relRes := runOne("reliable", true, "")
	if relRes == nil {
		return false
	}
	overhead := 100 * (relRes.Makespan.Seconds() - clean.Makespan.Seconds()) / clean.Makespan.Seconds()
	fmt.Printf("  reliable-mode overhead on a fault-free network: %+.2f%% of makespan\n", overhead)
	if planActive {
		fRes := runOne("faulted", true, planS)
		if fRes == nil {
			return false
		}
		if fRes.Counters["units_run"] != clean.Counters["units_run"] {
			fmt.Printf("  FAIL: faulted run computed %d units, clean run %d\n",
				fRes.Counters["units_run"], clean.Counters["units_run"])
			ok = false
		}
	}
	return ok
}

// recovOpts bundles the crash-recovery flags for one run.
type recovOpts struct {
	on              bool
	interval, lease substrate.Time
}

// run executes the clean / reliable / faulted triple on one workload and
// prints the comparison. Returns false if any check failed.
func run(w bench.Workload, system string, plan faulty.Plan, faultSeed int64, rel dmcs.RelConfig, rec recovOpts, backend string, timescale float64, spin bool, sink traceSink) bool {
	base := bench.ChaosSpec{System: system, Backend: backend, TimeScale: timescale, Spin: spin}

	relSpec := base
	relSpec.Rel = rel
	if rec.on {
		// Recovery rides on reliable delivery, so it arms on the reliable leg
		// (and the faulted leg, which inherits). Without a crash in the plan
		// this leg's output is byte-identical to a -recover-less run: the
		// checkpoint costs stay off the ledgers until a verdict fires.
		relSpec.Recover = true
		relSpec.CheckpointInterval = rec.interval
		relSpec.LeaseTimeout = rec.lease
	}

	faulted := relSpec
	faulted.Plan = plan
	faulted.FaultSeed = faultSeed

	ok := true
	base.Trace = sink.collector()
	clean, _, err := bench.RunChaos(w, base)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chaosbench:", err)
		return false
	}
	report("clean", clean, faulty.Stats{}, &ok)
	ok = sink.write("clean", base.Trace, clean) && ok

	relSpec.Trace = sink.collector()
	relRes, _, err := bench.RunChaos(w, relSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chaosbench:", err)
		return false
	}
	report("reliable", relRes, faulty.Stats{}, &ok)
	ok = sink.write("reliable", relSpec.Trace, relRes) && ok
	overhead := 100 * (relRes.Makespan.Seconds() - clean.Makespan.Seconds()) / clean.Makespan.Seconds()
	fmt.Printf("  reliable-mode overhead on a fault-free network: %+.2f%% of makespan\n", overhead)

	if plan.Active() {
		faulted.Trace = sink.collector()
		fRes, fStats, err := bench.RunChaos(w, faulted)
		if err != nil {
			fmt.Fprintln(os.Stderr, "chaosbench:", err)
			return false
		}
		report("faulted", fRes, fStats, &ok)
		ok = sink.write("faulted", faulted.Trace, fRes) && ok
		if fRes.Counters["units_run"] != clean.Counters["units_run"] {
			fmt.Printf("  FAIL: faulted run computed %d units, clean run %d\n",
				fRes.Counters["units_run"], clean.Counters["units_run"])
			ok = false
		}
		reportRecovery(fRes, clean, w.Procs)
	}
	return ok
}

// reportRecovery prints the crash-recovery ledger for the faulted leg: what
// the failure detector, directory repair, and replay did, and what the
// checkpoints cost relative to the clean run. Prints nothing unless a crash
// verdict actually fired, so fault plans without fail-stops keep today's
// output.
func reportRecovery(fRes, clean *bench.Result, procs int) {
	rs := fRes.Recov
	if rs == nil || rs.Suspects == 0 {
		return
	}
	fmt.Printf("  recovery: suspects=%d objects_restored=%d replayed=%d units_skipped=%d lost_units=%d rejoins=%d\n",
		rs.Suspects, rs.ObjectsRecovered, rs.EnvelopesReplayed, rs.UnitsSkipped,
		fRes.Counters["recov_lost_units"], rs.Rejoins)
	perProc := rs.Charged.Seconds() / float64(procs)
	fmt.Printf("  checkpoints: %d rounds, %d objects, %d bytes; cost %.4fs/proc = %.2f%% of clean makespan\n",
		rs.Checkpoints, rs.CheckpointObjects, rs.CheckpointBytes,
		perProc, 100*perProc/clean.Makespan.Seconds())
	fmt.Printf("  recovered-run makespan inflation: %+.2f%% vs clean\n",
		100*(fRes.Makespan.Seconds()-clean.Makespan.Seconds())/clean.Makespan.Seconds())
}

// report prints one run's line and applies the conservation check.
func report(label string, r *bench.Result, st faulty.Stats, ok *bool) {
	fmt.Printf("  %-9s makespan=%9.1fs  units=%d  retransmits=%d  dup_dropped=%d",
		label, r.Makespan.Seconds(), r.Counters["units_run"],
		r.Counters["rel_retransmits"], r.Counters["rel_dup_dropped"])
	if st != (faulty.Stats{}) {
		fmt.Printf("  [injected: dropped=%d dupped=%d delayed=%d reordered=%d stalls=%d]",
			st.Dropped, st.Dupped, st.Delayed, st.Reordered, st.Stalls)
	}
	if err := r.CheckConservation(); err != nil {
		fmt.Printf("\n  FAIL: %v\n", err)
		*ok = false
		return
	}
	fmt.Println("  conservation OK")
}
