// Command chaosbench runs the paper's microbenchmark figures on a faulted
// machine and checks that PREMA survives: with DMCS reliable delivery on,
// every work unit must compute exactly once and every mobile object must end
// resident on exactly one processor, no matter how lossy the network is.
//
// Usage:
//
//	chaosbench [-system prema-implicit] [-figs 3,4,5,6] \
//	           [-procs 32] [-units-per-proc 32] [-shards S] \
//	           [-partition roundrobin|blocked|loaded] \
//	           [-fault-plan "drop=0.2,dup=0.1"] [-fault-seed 1] \
//	           [-rto 50ms] [-backend sim|real] [-timescale 1e-2] [-spin] \
//	           [-trace trace.json] [-metrics metrics.txt]
//
// -trace/-metrics record every run through internal/trace (the tracing
// decorator wraps outside the fault injector, so the stream shows the
// retransmissions the reliable protocol performed) and write one
// Perfetto-loadable Chrome trace / metrics rendering per run, suffixing
// figN.label (clean, reliable, faulted) before the file extension.
//
// For each figure scenario it runs three configurations:
//
//	clean      classic fire-and-forget DMCS, no faults (the baseline)
//	reliable   reliable delivery, no faults (protocol overhead measurement)
//	faulted    reliable delivery on the faulted machine (the chaos run)
//
// and reports makespans, the reliable-mode overhead on a fault-free network,
// retransmission counts, injected-fault counts, and the conservation check.
// A classic (unreliable) stack on the same fault plan would lose units; the
// point of the harness is that the reliable stack does not. Exits non-zero
// if any run fails conservation or the application outcome diverges from
// the clean run.
//
// The fault plan uses the internal/faulty syntax; see `-fault-plan ""` for a
// clean sweep or e.g. "drop=0.2,dup=0.1;stall:2@100s+20s" to freeze a
// processor mid-run.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"prema/internal/bench"
	"prema/internal/dmcs"
	"prema/internal/faulty"
	"prema/internal/substrate"
	"prema/internal/trace"
)

func main() {
	system := flag.String("system", "prema-implicit", "PREMA system configuration (none, prema-explicit, prema-implicit)")
	figs := flag.String("figs", "3,4,5,6", "comma-separated paper figure scenarios to run")
	procs := flag.Int("procs", 32, "simulated processors")
	upp := flag.Int("units-per-proc", 32, "work units per processor")
	shards := flag.Int("shards", 1, "simulator backend: parallel event-loop shards per simulation (output is identical for any value)")
	partition := flag.String("partition", "roundrobin", "simulator backend: processor-to-shard placement strategy: roundrobin, blocked, or loaded (output is identical for any value)")
	planS := flag.String("fault-plan", "drop=0.2,dup=0.1", "fault plan (faulty syntax; \"none\" = clean)")
	faultSeed := flag.Int64("fault-seed", 1, "fault injector seed")
	rto := flag.Duration("rto", 50*time.Millisecond, "reliable-mode initial retransmission timeout")
	backend := flag.String("backend", "sim", "execution substrate: sim (deterministic) | real (goroutines)")
	timescale := flag.Float64("timescale", 1e-2, "real backend: wall seconds per virtual second")
	spin := flag.Bool("spin", false, "real backend: busy-wait instead of sleeping")
	traceOut := flag.String("trace", "", "write Chrome trace JSON per run (base path; figN.label is inserted before the extension)")
	metricsOut := flag.String("metrics", "", "write aggregated trace metrics per run (base path, same suffixing; .json = JSON)")
	traceRing := flag.Int("trace-ring", trace.DefaultRingCap, "per-processor trace ring capacity in events (rounded up to a power of two)")
	flag.Parse()

	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "chaosbench: unexpected arguments: %v\n", flag.Args())
		os.Exit(2)
	}
	if *procs < 1 || *upp < 1 {
		fmt.Fprintf(os.Stderr, "chaosbench: -procs and -units-per-proc must be positive (got %d, %d)\n", *procs, *upp)
		os.Exit(2)
	}
	if *rto <= 0 {
		fmt.Fprintf(os.Stderr, "chaosbench: -rto must be positive (got %v)\n", *rto)
		os.Exit(2)
	}
	if *timescale <= 0 {
		fmt.Fprintf(os.Stderr, "chaosbench: -timescale must be positive (got %g)\n", *timescale)
		os.Exit(2)
	}
	if *backend != "sim" && *backend != "real" {
		fmt.Fprintf(os.Stderr, "chaosbench: unknown backend %q (want sim or real)\n", *backend)
		os.Exit(2)
	}
	if *shards < 1 {
		fmt.Fprintf(os.Stderr, "chaosbench: -shards must be >= 1 (got %d)\n", *shards)
		os.Exit(2)
	}
	if *shards > 1 && *backend != "sim" {
		fmt.Fprintf(os.Stderr, "chaosbench: -shards applies to the simulator backend only; use -backend=sim\n")
		os.Exit(2)
	}
	if !bench.ValidPartition(*partition) {
		fmt.Fprintf(os.Stderr, "chaosbench: -partition must be one of %v (got %q)\n", bench.PartitionStrategies, *partition)
		os.Exit(2)
	}
	plan, err := faulty.ParsePlan(*planS)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chaosbench:", err)
		os.Exit(2)
	}
	var specs []bench.FigureSpec
	for _, f := range strings.Split(*figs, ",") {
		id, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			fmt.Fprintf(os.Stderr, "chaosbench: bad figure %q in -figs\n", f)
			os.Exit(2)
		}
		spec, err := bench.FigureByID(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, "chaosbench:", err)
			os.Exit(2)
		}
		specs = append(specs, spec)
	}

	rel := dmcs.DefaultRelConfig()
	rel.RTO = substrate.FromDuration(*rto)

	if (*traceOut != "" || *metricsOut != "") && *traceRing < 1 {
		fmt.Fprintf(os.Stderr, "chaosbench: -trace-ring must be >= 1 (got %d)\n", *traceRing)
		os.Exit(2)
	}
	sink := traceSink{tracePath: *traceOut, metricsPath: *metricsOut, ring: *traceRing}

	failed := false
	for _, spec := range specs {
		w := bench.PaperWorkload(spec, *procs, *upp)
		w.Shards = *shards
		w.Partition = *partition
		fmt.Printf("=== Figure %d scenario: imbalance %.0f%%, heavy = %.1fx light (procs=%d, units=%d, backend=%s) ===\n",
			spec.ID, spec.Imbalance*100, spec.Ratio, w.Procs, w.Units, *backend)
		sink.fig = spec.ID
		if !run(w, *system, plan, *faultSeed, rel, *backend, *timescale, *spin, sink) {
			failed = true
		}
		fmt.Println()
	}
	if failed {
		os.Exit(1)
	}
}

// traceSink carries the per-run trace/metrics export configuration.
type traceSink struct {
	tracePath   string
	metricsPath string
	ring        int
	fig         int
}

func (ts traceSink) active() bool { return ts.tracePath != "" || ts.metricsPath != "" }

// collector returns a fresh collector when exporting is on, nil otherwise.
func (ts traceSink) collector() *trace.Collector {
	if !ts.active() {
		return nil
	}
	return trace.NewCollector(ts.ring)
}

// write exports one labeled run's trace and metrics.
func (ts traceSink) write(label string, col *trace.Collector, r *bench.Result) bool {
	if col == nil {
		return true
	}
	suffix := fmt.Sprintf("fig%d.%s", ts.fig, label)
	if ts.tracePath != "" {
		path := trace.SuffixPath(ts.tracePath, suffix)
		if err := col.WriteChromeFile(path); err != nil {
			fmt.Fprintln(os.Stderr, "chaosbench:", err)
			return false
		}
		fmt.Printf("  wrote %s (%d events, %d dropped)\n", path, col.Total(), col.Dropped())
	}
	if ts.metricsPath != "" {
		path := trace.SuffixPath(ts.metricsPath, suffix)
		if err := trace.Summarize(col, r.Makespan).WriteFile(path); err != nil {
			fmt.Fprintln(os.Stderr, "chaosbench:", err)
			return false
		}
		fmt.Printf("  wrote %s\n", path)
	}
	return true
}

// run executes the clean / reliable / faulted triple on one workload and
// prints the comparison. Returns false if any check failed.
func run(w bench.Workload, system string, plan faulty.Plan, faultSeed int64, rel dmcs.RelConfig, backend string, timescale float64, spin bool, sink traceSink) bool {
	base := bench.ChaosSpec{System: system, Backend: backend, TimeScale: timescale, Spin: spin}

	relSpec := base
	relSpec.Rel = rel

	faulted := relSpec
	faulted.Plan = plan
	faulted.FaultSeed = faultSeed

	ok := true
	base.Trace = sink.collector()
	clean, _, err := bench.RunChaos(w, base)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chaosbench:", err)
		return false
	}
	report("clean", clean, faulty.Stats{}, &ok)
	ok = sink.write("clean", base.Trace, clean) && ok

	relSpec.Trace = sink.collector()
	relRes, _, err := bench.RunChaos(w, relSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chaosbench:", err)
		return false
	}
	report("reliable", relRes, faulty.Stats{}, &ok)
	ok = sink.write("reliable", relSpec.Trace, relRes) && ok
	overhead := 100 * (relRes.Makespan.Seconds() - clean.Makespan.Seconds()) / clean.Makespan.Seconds()
	fmt.Printf("  reliable-mode overhead on a fault-free network: %+.2f%% of makespan\n", overhead)

	if plan.Active() {
		faulted.Trace = sink.collector()
		fRes, fStats, err := bench.RunChaos(w, faulted)
		if err != nil {
			fmt.Fprintln(os.Stderr, "chaosbench:", err)
			return false
		}
		report("faulted", fRes, fStats, &ok)
		ok = sink.write("faulted", faulted.Trace, fRes) && ok
		if fRes.Counters["units_run"] != clean.Counters["units_run"] {
			fmt.Printf("  FAIL: faulted run computed %d units, clean run %d\n",
				fRes.Counters["units_run"], clean.Counters["units_run"])
			ok = false
		}
	}
	return ok
}

// report prints one run's line and applies the conservation check.
func report(label string, r *bench.Result, st faulty.Stats, ok *bool) {
	fmt.Printf("  %-9s makespan=%9.1fs  units=%d  retransmits=%d  dup_dropped=%d",
		label, r.Makespan.Seconds(), r.Counters["units_run"],
		r.Counters["rel_retransmits"], r.Counters["rel_dup_dropped"])
	if st != (faulty.Stats{}) {
		fmt.Printf("  [injected: dropped=%d dupped=%d delayed=%d reordered=%d stalls=%d]",
			st.Dropped, st.Dupped, st.Delayed, st.Reordered, st.Stalls)
	}
	if err := r.CheckConservation(); err != nil {
		fmt.Printf("\n  FAIL: %v\n", err)
		*ok = false
		return
	}
	fmt.Println("  conservation OK")
}
