// Command meshgen runs the paper's mesh-generation experiment (§5): the 3-D
// advancing front mesher with a crack sweeping through the domain, under
// three regimes — no load balancing, PREMA with implicit work stealing, and
// root-coordinated stop-and-repartition. The paper reports PREMA 15% faster
// than stop-and-repartition and 42% faster than no balancing, with runtime
// overheads under 1% of total runtime.
//
// Usage:
//
//	meshgen [-procs 32] [-iters 12] [-real] [-stride 4] [-jobs J]
//
// -real runs the actual advancing front mesher for every
// (subdomain, crack position) pair to build the workload matrix (slower);
// the default uses the analytic element estimator, which tracks the mesher's
// counts closely.
package main

import (
	"flag"
	"fmt"
	"os"

	"prema/internal/bench"
	"prema/internal/sim"
	"prema/internal/sweep"
)

func main() {
	procs := flag.Int("procs", 32, "simulated processors")
	iters := flag.Int("iters", 12, "crack growth iterations")
	real := flag.Bool("real", false, "run the real advancing front mesher for the cost matrix")
	stride := flag.Int("stride", 0, "per-processor breakdown sampling stride (0 = summaries only)")
	jobs := flag.Int("jobs", sweep.DefaultJobs(), "max concurrent mesher rows / simulations (1 = serial)")
	flag.Parse()

	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "meshgen: unexpected arguments: %v\n", flag.Args())
		os.Exit(2)
	}
	if *procs < 1 || *iters < 1 {
		fmt.Fprintf(os.Stderr, "meshgen: -procs and -iters must be positive (got %d, %d)\n", *procs, *iters)
		os.Exit(2)
	}
	if *stride < 0 {
		fmt.Fprintf(os.Stderr, "meshgen: -stride must be >= 0 (got %d)\n", *stride)
		os.Exit(2)
	}
	if *jobs < 1 {
		fmt.Fprintf(os.Stderr, "meshgen: -jobs must be >= 1 (got %d)\n", *jobs)
		os.Exit(2)
	}

	cfg := bench.DefaultMeshExpConfig()
	cfg.Procs = *procs
	cfg.Iterations = *iters
	cfg.UseMesher = *real

	src := "estimator"
	if *real {
		src = "advancing front mesher"
	}
	fmt.Printf("building workload matrix (%s): %d subdomains x %d iterations...\n",
		src, cfg.NumSubdomains(), cfg.Iterations)
	mc := bench.BuildMeshCostsJobs(cfg, *jobs)
	fmt.Printf("total work %v, ideal makespan %v on %d procs\n\n",
		mc.TotalWork(cfg), mc.TotalWork(cfg)/sim.Time(cfg.Procs), cfg.Procs)

	results, err := bench.RunMeshSystems(bench.MeshSystems, cfg, mc, *jobs)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for i, r := range results {
		fmt.Printf("  %-15s makespan=%8.1fs  overhead=%6.3f%% of runtime  sync+partition=%5.1f%% of compute\n",
			bench.MeshSystems[i], r.Makespan.Seconds(), r.OverheadOfRuntimePct(), r.SyncPct())
		if *stride > 0 {
			fmt.Println(r.Breakdown(*stride))
		}
	}
	none, prema, repart := results[0], results[1], results[2]
	fmt.Printf("\nPREMA vs no balancing:        %+.1f%%  (paper: -42%%)\n",
		100*(prema.Makespan.Seconds()-none.Makespan.Seconds())/none.Makespan.Seconds())
	fmt.Printf("PREMA vs stop-and-repartition: %+.1f%%  (paper: -15%%)\n",
		100*(prema.Makespan.Seconds()-repart.Makespan.Seconds())/repart.Makespan.Seconds())
	fmt.Printf("PREMA overhead:                %.3f%% of total runtime (paper: <1%%)\n",
		prema.OverheadOfRuntimePct())
}
