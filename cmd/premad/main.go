// Command premad is the PREMA node daemon of the distributed backend: one
// process hosting a contiguous range of a machine's processors, connected
// to its peers by TCP.
//
// Usage:
//
//	premad -coord HOST:PORT [-listen 127.0.0.1:0] [-node -1] \
//	       [-sessions 1] [-join-timeout 30s] [-drain-timeout 30s] \
//	       [-max-frame 1048576]
//
// The daemon dials the coordinator (retrying until -join-timeout, so it
// may be started before the coordinator is listening), joins the session,
// receives the roster and scenario, runs its share of the benchmark, and
// reports its partial result. With -sessions 1 (the default) it exits
// after one session; -sessions 0 loops forever, serving session after
// session — the attach-mode deployment where daemons outlive coordinators.
//
// -node claims a fixed node id (the rank range [id*procs/n, (id+1)*procs/n));
// the default -1 lets the coordinator assign ids in arrival order.
//
// Any session failure — lost coordinator connection, a peer dying mid-run,
// a missed drain deadline — makes the daemon exit with status 1 and a
// clear error instead of hanging.
package main

import (
	"flag"
	"fmt"
	"os"

	"prema/internal/bench"
	"prema/internal/dist"
)

func main() {
	coord := flag.String("coord", "", "coordinator control address (host:port; required)")
	listen := flag.String("listen", "127.0.0.1:0", "data-plane listen address for peer connections")
	node := flag.Int("node", -1, "node id to claim (-1 = coordinator-assigned)")
	sessions := flag.Int("sessions", 1, "sessions to serve before exiting (0 = loop forever)")
	joinTimeout := flag.Duration("join-timeout", dist.DefaultJoinTimeout, "bound on the join handshake (dial retries, roster, mesh)")
	drainTimeout := flag.Duration("drain-timeout", dist.DefaultDrainTimeout, "bound on the shutdown handshake after the last local processor finishes")
	maxFrame := flag.Int("max-frame", 0, "largest wire frame accepted from a peer, in bytes (0 = 1 MiB default)")
	flag.Parse()

	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "premad: unexpected arguments: %v\n", flag.Args())
		os.Exit(2)
	}
	if *coord == "" {
		fmt.Fprintln(os.Stderr, "premad: -coord is required")
		os.Exit(2)
	}
	if *sessions < 0 {
		fmt.Fprintf(os.Stderr, "premad: -sessions must be >= 0 (got %d)\n", *sessions)
		os.Exit(2)
	}
	if *joinTimeout <= 0 || *drainTimeout <= 0 {
		fmt.Fprintf(os.Stderr, "premad: -join-timeout and -drain-timeout must be positive (got %v, %v)\n", *joinTimeout, *drainTimeout)
		os.Exit(2)
	}
	if *maxFrame < 0 {
		fmt.Fprintf(os.Stderr, "premad: -max-frame must be >= 0 (got %d)\n", *maxFrame)
		os.Exit(2)
	}

	cfg := dist.NodeConfig{
		Coord:        *coord,
		Listen:       *listen,
		Node:         *node,
		JoinTimeout:  *joinTimeout,
		DrainTimeout: *drainTimeout,
		MaxFrame:     *maxFrame,
	}
	for s := 0; *sessions == 0 || s < *sessions; s++ {
		if err := serve(cfg); err != nil {
			fmt.Fprintln(os.Stderr, "premad:", err)
			os.Exit(1)
		}
	}
}

// serve joins one session, runs this node's share, and reports the result.
func serve(cfg dist.NodeConfig) error {
	n, err := dist.Join(cfg)
	if err != nil {
		return err
	}
	defer n.Close()
	return bench.RunDistNode(n)
}
