// Command tracestat summarizes a Chrome trace_event JSON file produced by
// the internal/trace exporter (premabench/figures/chaosbench -trace): the
// per-processor time breakdown by phase, migration traffic, forwarding-chain
// lengths, and work-unit duration percentiles — the drilldown behind the
// paper's idle-time and overhead claims, without opening Perfetto.
//
// Usage:
//
//	tracestat [-stride N] trace.json
//
// -stride samples the per-processor table (0 = totals only, 1 = every
// processor). Exits 2 on flag errors, 1 if the file is not a Chrome trace.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"prema/internal/stats"
)

// tev is the subset of a Chrome trace_event record tracestat reads.
type tev struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Tid  int            `json:"tid"`
	Ts   float64        `json:"ts"`  // microseconds
	Dur  float64        `json:"dur"` // microseconds
	Args map[string]any `json:"args"`
}

// traceFile is the top-level Chrome trace JSON object.
type traceFile struct {
	TraceEvents []tev `json:"traceEvents"`
}

func main() {
	stride := flag.Int("stride", 1, "per-processor table sampling stride (0 = totals only)")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "tracestat: exactly one trace file argument required")
		os.Exit(2)
	}
	if *stride < 0 {
		fmt.Fprintf(os.Stderr, "tracestat: -stride must be >= 0 (got %d)\n", *stride)
		os.Exit(2)
	}
	buf, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracestat:", err)
		os.Exit(1)
	}
	var tf traceFile
	if err := json.Unmarshal(buf, &tf); err != nil {
		fmt.Fprintln(os.Stderr, "tracestat: not a Chrome trace:", err)
		os.Exit(1)
	}
	if len(tf.TraceEvents) == 0 {
		fmt.Fprintln(os.Stderr, "tracestat: no traceEvents in file")
		os.Exit(1)
	}
	summarize(os.Stdout, &tf, *stride)
}

// procStat accumulates one processor's row.
type procStat struct {
	phases     map[string]float64 // seconds per phase name
	units      int
	unitS      []float64
	migOut     int
	migIn      int
	forwards   int
	sends      int
	retransmit int
	ckpt       int
	suspects   int
	repairs    int
	replays    int
}

func summarize(w *os.File, tf *traceFile, stride int) {
	procs := map[int]*procStat{}
	get := func(tid int) *procStat {
		p := procs[tid]
		if p == nil {
			p = &procStat{phases: map[string]float64{}}
			procs[tid] = p
		}
		return p
	}
	phaseNames := map[string]bool{}
	var hops []float64
	var end float64
	firstSuspect, lastRepair := -1.0, -1.0
	for _, e := range tf.TraceEvents {
		if t := e.Ts + e.Dur; t > end {
			end = t
		}
		switch {
		case e.Ph == "X" && e.Cat == "phase":
			get(e.Tid).phases[e.Name] += e.Dur / 1e6
			phaseNames[e.Name] = true
		case e.Ph == "X" && e.Name == "unit":
			p := get(e.Tid)
			p.units++
			p.unitS = append(p.unitS, e.Dur/1e6)
		case e.Ph == "i":
			p := get(e.Tid)
			switch e.Name {
			case "migrate-out":
				p.migOut++
			case "migrate-in":
				p.migIn++
			case "forward":
				p.forwards++
				if h, ok := e.Args["hops"].(float64); ok {
					hops = append(hops, h)
				}
			case "send":
				p.sends++
			case "retransmit":
				p.retransmit++
			case "checkpoint":
				p.ckpt++
			case "suspect":
				p.suspects++
				if firstSuspect < 0 || e.Ts < firstSuspect {
					firstSuspect = e.Ts
				}
			case "repair":
				p.repairs++
				if e.Ts > lastRepair {
					lastRepair = e.Ts
				}
			case "replay":
				p.replays++
				if e.Ts > lastRepair {
					lastRepair = e.Ts
				}
			}
		}
	}

	tids := make([]int, 0, len(procs))
	for tid := range procs {
		tids = append(tids, tid)
	}
	sort.Ints(tids)
	names := make([]string, 0, len(phaseNames))
	for n := range phaseNames {
		names = append(names, n)
	}
	sort.Strings(names)

	var allUnits []float64
	tot := &procStat{phases: map[string]float64{}}
	for _, tid := range tids {
		p := procs[tid]
		for n, s := range p.phases {
			tot.phases[n] += s
		}
		tot.units += p.units
		tot.migOut += p.migOut
		tot.migIn += p.migIn
		tot.forwards += p.forwards
		tot.sends += p.sends
		tot.retransmit += p.retransmit
		tot.ckpt += p.ckpt
		tot.suspects += p.suspects
		tot.repairs += p.repairs
		tot.replays += p.replays
		allUnits = append(allUnits, p.unitS...)
	}
	recovery := tot.ckpt+tot.suspects+tot.repairs+tot.replays > 0

	fmt.Fprintf(w, "trace: %d processors, %d events, span %.3fs\n\n",
		len(tids), len(tf.TraceEvents), end/1e6)

	header := append([]string{"proc"}, names...)
	header = append(header, "units", "mig-out", "mig-in", "fwd", "sends")
	if recovery {
		header = append(header, "ckpt", "suspect", "repair", "replay")
	}
	t := stats.NewTable(header...)
	row := func(label string, p *procStat) {
		cells := []any{label}
		for _, n := range names {
			cells = append(cells, fmt.Sprintf("%.2fs", p.phases[n]))
		}
		cells = append(cells, p.units, p.migOut, p.migIn, p.forwards, p.sends)
		if recovery {
			cells = append(cells, p.ckpt, p.suspects, p.repairs, p.replays)
		}
		t.AddRow(cells...)
	}
	if stride > 0 {
		for i := 0; i < len(tids); i += stride {
			p := procs[tids[i]]
			row(fmt.Sprintf("p%03d", tids[i]), p)
		}
	}
	row("TOTAL", tot)
	fmt.Fprintln(w, t.String())

	// Idle share across the machine: the headline number of the paper's
	// figures (idle is what load balancing removes).
	var busy, idle float64
	for n, s := range tot.phases {
		busy += s
		if n == "Idle" {
			idle = s
		}
	}
	if busy > 0 {
		fmt.Fprintf(w, "idle share: %.2f%% of traced processor time\n", 100*idle/busy)
	}
	if tot.retransmit > 0 {
		fmt.Fprintf(w, "retransmissions: %d\n", tot.retransmit)
	}
	if tot.ckpt > 0 {
		fmt.Fprintf(w, "checkpoints: %d rounds across the machine\n", tot.ckpt)
	}
	if tot.suspects > 0 {
		fmt.Fprintf(w, "recovery: %d suspect verdicts, %d objects repaired, %d envelopes replayed\n",
			tot.suspects, tot.repairs, tot.replays)
		// Time-to-recovery: first down verdict to the last repair/replay the
		// coordinator issued. Suspect verdicts with no repair activity (e.g.
		// an object-free processor crashing) report zero.
		if lastRepair >= firstSuspect {
			fmt.Fprintf(w, "time to recovery: %.3fs (first suspect to last repair/replay)\n",
				(lastRepair-firstSuspect)/1e6)
		}
	}
	if len(allUnits) > 0 {
		fmt.Fprintf(w, "work units: %d  p50=%.3fs p95=%.3fs p99=%.3fs max=%.3fs\n",
			len(allUnits), stats.P50(allUnits), stats.P95(allUnits), stats.P99(allUnits), stats.Max(allUnits))
	}
	if len(hops) > 0 {
		fmt.Fprintf(w, "forwarding chains: %d  mean=%.2f p95=%.0f max=%.0f hops\n",
			len(hops), stats.Mean(hops), stats.P95(hops), stats.Max(hops))
	}
}
