module prema

go 1.22
