// Package prema is a reproduction of "An Evaluation of a Framework for the
// Dynamic Load Balancing of Highly Adaptive and Irregular Parallel
// Applications" (Barker & Chrisochoides, SC'03): the PREMA runtime — active
// messages, a mobile object layer with transparent migration, and an
// implicit (preemptive) load balancing framework — together with the
// baselines the paper compares against (a ParMETIS-style adaptive
// repartitioner and a Charm++-style chare runtime), all running on a
// deterministic discrete-event cluster simulator.
//
// See DESIGN.md for the system inventory, EXPERIMENTS.md for
// paper-vs-measured results, and the examples/ directory for runnable
// programs against the public API in internal/core.
package prema
