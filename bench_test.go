// Benchmarks regenerating every table and figure of the paper's evaluation
// (at 32-processor benchmark scale; run cmd/figures and cmd/meshgen for the
// full 128-processor reproduction), plus microbenchmarks of the substrate
// layers and ablations of the design decisions called out in DESIGN.md §5.
//
// Simulated quantities are reported as custom metrics:
//
//	makespan-s    virtual seconds of overall runtime
//	overhead-pct  runtime overhead as % of useful computation
//	sync-pct      synchronization + partitioning as % of useful computation
package prema_test

import (
	"fmt"
	"testing"

	"prema/internal/bench"
	"prema/internal/charm"
	"prema/internal/dmcs"
	"prema/internal/graph"
	"prema/internal/ilb"
	"prema/internal/mesh"
	"prema/internal/mol"
	"prema/internal/parmetis"
	"prema/internal/partition"
	"prema/internal/sim"
)

const (
	benchProcs = 32
	benchUPP   = 32 // units per processor
)

func report(b *testing.B, r *bench.Result) {
	b.Helper()
	b.ReportMetric(r.Makespan.Seconds(), "makespan-s")
	b.ReportMetric(r.OverheadPct(), "overhead-pct")
	b.ReportMetric(r.SyncPct(), "sync-pct")
}

// benchFigure runs all six system configurations of one paper figure.
func benchFigure(b *testing.B, id int) {
	spec, err := bench.FigureByID(id)
	if err != nil {
		b.Fatal(err)
	}
	w := bench.PaperWorkload(spec, benchProcs, benchUPP)
	for _, sys := range bench.SystemNames {
		b.Run(sys, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := bench.RunSystem(sys, w)
				if err != nil {
					b.Fatal(err)
				}
				report(b, r)
			}
		})
	}
}

// BenchmarkFigure3: 50% initial imbalance, heavy units 2x light.
func BenchmarkFigure3(b *testing.B) { benchFigure(b, 3) }

// BenchmarkFigure4: 10% initial imbalance (localized spike), heavy 2x light.
func BenchmarkFigure4(b *testing.B) { benchFigure(b, 4) }

// BenchmarkFigure5: 50% initial imbalance, heavy 20% over light.
func BenchmarkFigure5(b *testing.B) { benchFigure(b, 5) }

// BenchmarkFigure6: 10% initial imbalance, heavy 20% over light.
func BenchmarkFigure6(b *testing.B) { benchFigure(b, 6) }

// BenchmarkMeshExperiment regenerates the paper's mesh-generation results
// (PREMA vs stop-and-repartition vs none).
func BenchmarkMeshExperiment(b *testing.B) {
	cfg := bench.DefaultMeshExpConfig()
	cfg.Procs = 16
	cfg.Grid = [3]int{8, 4, 2}
	cfg.Iterations = 8
	mc := bench.BuildMeshCosts(cfg)
	for _, sys := range bench.MeshSystems {
		b.Run(sys, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := bench.RunMeshSystem(sys, cfg, mc)
				if err != nil {
					b.Fatal(err)
				}
				report(b, r)
				b.ReportMetric(r.OverheadOfRuntimePct(), "overhead-of-runtime-pct")
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Ablations (DESIGN.md §5).

// BenchmarkAblationPollInterval sweeps the implicit-mode polling thread
// period: the paper's preemption mechanism vs its cost.
func BenchmarkAblationPollInterval(b *testing.B) {
	spec, _ := bench.FigureByID(4)
	w := bench.PaperWorkload(spec, benchProcs, benchUPP)
	for _, interval := range []sim.Time{1 * sim.Millisecond, 10 * sim.Millisecond, 100 * sim.Millisecond, sim.Second} {
		b.Run(interval.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := bench.DefaultPremaConfig(ilb.Implicit, true)
				cfg.PollInterval = interval
				r, err := bench.RunPrema(w, cfg)
				if err != nil {
					b.Fatal(err)
				}
				report(b, r)
			}
		})
	}
}

// BenchmarkAblationPollEvery sweeps how often the application posts polls
// between work units — the lever behind explicit-mode decay (paper §3-4).
func BenchmarkAblationPollEvery(b *testing.B) {
	spec, _ := bench.FigureByID(4)
	w := bench.PaperWorkload(spec, benchProcs, benchUPP)
	for _, every := range []int{1, 4, 8, 32} {
		b.Run(fmt.Sprintf("every%d", every), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := bench.DefaultPremaConfig(ilb.Explicit, true)
				cfg.PollEvery = every
				r, err := bench.RunPrema(w, cfg)
				if err != nil {
					b.Fatal(err)
				}
				report(b, r)
			}
		})
	}
}

// BenchmarkAblationMaxObjects sweeps how many mobile objects migrate per
// steal grant (paper footnote 2: single coarse object vs several finer ones).
func BenchmarkAblationMaxObjects(b *testing.B) {
	spec, _ := bench.FigureByID(3)
	w := bench.PaperWorkload(spec, benchProcs, benchUPP)
	for _, maxObj := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("objects%d", maxObj), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := bench.DefaultPremaConfig(ilb.Implicit, true)
				cfg.WS.MaxObjects = maxObj
				r, err := bench.RunPrema(w, cfg)
				if err != nil {
					b.Fatal(err)
				}
				report(b, r)
			}
		})
	}
}

// BenchmarkAblationWaterMark sweeps the explicit-mode water-mark, the
// "cushion" tuning problem of paper §4.1.
func BenchmarkAblationWaterMark(b *testing.B) {
	spec, _ := bench.FigureByID(4)
	w := bench.PaperWorkload(spec, benchProcs, benchUPP)
	for _, wm := range []float64{3, 12, 50, 200} {
		b.Run(fmt.Sprintf("wm%.0f", wm), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := bench.DefaultPremaConfig(ilb.Explicit, true)
				cfg.WaterMark = wm
				r, err := bench.RunPrema(w, cfg)
				if err != nil {
					b.Fatal(err)
				}
				report(b, r)
			}
		})
	}
}

// BenchmarkAblationHints compares intentionally inaccurate (mean) hints
// against accurate weights for the stop-and-repartition baseline: how much
// of its shortfall is prediction error?
func BenchmarkAblationHints(b *testing.B) {
	spec, _ := bench.FigureByID(3)
	for _, hints := range []bench.HintMode{bench.HintMean, bench.HintAccurate} {
		b.Run(hints.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				w := bench.PaperWorkload(spec, benchProcs, benchUPP)
				w.Hints = hints
				r, err := bench.RunParmetis(w, bench.DefaultParmetisConfig())
				if err != nil {
					b.Fatal(err)
				}
				report(b, r)
			}
		})
	}
}

// BenchmarkAblationCharmStrategy compares the Charm-style central
// strategies under the adaptive (moving spike) regime.
func BenchmarkAblationCharmStrategy(b *testing.B) {
	spec, _ := bench.FigureByID(4)
	w := bench.PaperWorkload(spec, benchProcs, benchUPP)
	strategies := map[string]charm.Strategy{
		"greedy":   charm.GreedyLB{},
		"refine":   charm.RefineLB{},
		"metis":    charm.MetisLB{},
		"rotate":   charm.RotateLB{},
		"randcent": &charm.RandCentLB{Seed: 7},
	}
	for _, name := range []string{"greedy", "refine", "metis", "rotate", "randcent"} {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := bench.DefaultCharmConfig(4)
				cfg.Strategy = strategies[name]
				r, err := bench.RunCharm(w, cfg)
				if err != nil {
					b.Fatal(err)
				}
				report(b, r)
			}
		})
	}
}

// BenchmarkAblationURAAlpha sweeps the Relative Cost Factor of the Unified
// Repartitioning Algorithm (paper Eq. 1): edge-cut vs migration volume.
func BenchmarkAblationURAAlpha(b *testing.B) {
	g := graph.Grid3D(16, 16, 4)
	old := partition.Partition(g, 16, partition.Options{Seed: 3})
	for v := 0; v < g.NumVertices(); v++ {
		if v%16 < 4 && (v/16)%16 < 4 {
			g.VWgt[v] = 12
		}
	}
	for _, alpha := range []float64{0.01, 0.1, 1, 100} {
		b.Run(fmt.Sprintf("alpha%g", alpha), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opt := parmetis.DefaultOptions()
				opt.Alpha = alpha
				newPart := parmetis.AdaptiveRepart(g, 16, old, opt)
				b.ReportMetric(float64(graph.EdgeCut(g, newPart)), "edgecut")
				b.ReportMetric(float64(graph.MoveVolume(g, old, newPart)), "movevol")
			}
		})
	}
}

// BenchmarkAblationForwardNotify toggles the MOL's forwarding cache updates
// (DESIGN.md design decision 3: chase the chain vs tell the origin).
func BenchmarkAblationForwardNotify(b *testing.B) {
	for _, notify := range []bool{true, false} {
		b.Run(fmt.Sprintf("notify=%v", notify), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e := sim.NewEngine(sim.Config{Seed: 5})
				var forwards int
				// Proc 2 streams messages at an object that keeps migrating
				// between procs 0 and 1.
				for p := 0; p < 3; p++ {
					e.Spawn("p", func(proc *sim.Proc) {
						cfg := mol.DefaultConfig()
						cfg.NotifyOrigin = notify
						l := mol.New(dmcs.New(proc), cfg)
						h := l.RegisterHandler(func(l *mol.Layer, obj *mol.Object, src int, data any, size int) {})
						switch proc.ID() {
						case 0:
							mp := l.Register("obj", 256)
							for round := 0; round < 50; round++ {
								if l.Lookup(mp) != nil {
									l.Migrate(mp, 1)
								}
								proc.WaitMsgFor(20*sim.Millisecond, sim.CatIdle)
								l.Comm().Poll()
							}
							for l.Comm().WaitPollFor(200*sim.Millisecond, sim.CatIdle) > 0 {
							}
							forwards += l.Stats.Forwards
						case 1:
							mp := mol.MobilePtr{Home: 0, Index: 0}
							for round := 0; round < 50; round++ {
								if l.Lookup(mp) != nil {
									l.Migrate(mp, 0)
								}
								proc.WaitMsgFor(20*sim.Millisecond, sim.CatIdle)
								l.Comm().Poll()
							}
							for l.Comm().WaitPollFor(200*sim.Millisecond, sim.CatIdle) > 0 {
							}
							forwards += l.Stats.Forwards
						case 2:
							mp := mol.MobilePtr{Home: 0, Index: 0}
							for round := 0; round < 200; round++ {
								l.Message(mp, h, round, 64)
								proc.Advance(5*sim.Millisecond, sim.CatCompute)
								l.Comm().PollTag(sim.TagSystem)
							}
							for l.Comm().WaitPollFor(200*sim.Millisecond, sim.CatIdle) > 0 {
							}
						}
					})
				}
				if err := e.Run(); err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(forwards), "forwards")
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Substrate microbenchmarks (host performance of the simulator and
// algorithms themselves).

// BenchmarkEngineEvents measures raw event throughput of the simulator.
func BenchmarkEngineEvents(b *testing.B) {
	e := sim.NewEngine(sim.Config{Seed: 1})
	e.Spawn("p", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			p.Advance(sim.Microsecond, sim.CatCompute)
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkActiveMessage measures simulated AM round trips per host second.
func BenchmarkActiveMessage(b *testing.B) {
	e := sim.NewEngine(sim.Config{Seed: 1})
	e.Spawn("pong", func(p *sim.Proc) {
		c := dmcs.New(p)
		var h dmcs.HandlerID
		h = c.Register(func(c *dmcs.Comm, src int, data any, size int) {
			if data.(int) > 0 {
				c.Send(src, h, data.(int)-1, 8)
			}
		})
		for i := 0; i < b.N; i++ {
			c.WaitPoll(sim.CatIdle)
		}
	})
	e.Spawn("ping", func(p *sim.Proc) {
		c := dmcs.New(p)
		var h dmcs.HandlerID
		h = c.Register(func(c *dmcs.Comm, src int, data any, size int) {
			if data.(int) > 0 {
				c.Send(src, h, data.(int)-1, 8)
			}
		})
		c.Send(0, h, 2*b.N, 8)
		for i := 0; i < b.N; i++ {
			c.WaitPoll(sim.CatIdle)
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil && err != sim.ErrDeadlock {
		b.Log(err) // tail messages may strand one poller; irrelevant here
	}
}

// BenchmarkPartitionGrid measures the multilevel partitioner on a 3-D grid.
func BenchmarkPartitionGrid(b *testing.B) {
	g := graph.Grid3D(24, 24, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		part := partition.Partition(g, 16, partition.Options{Seed: int64(i)})
		if i == 0 {
			b.ReportMetric(float64(graph.EdgeCut(g, part)), "edgecut")
		}
	}
}

// BenchmarkAdaptiveRepart measures the URA on an imbalanced grid.
func BenchmarkAdaptiveRepart(b *testing.B) {
	g := graph.Grid3D(24, 24, 8)
	old := partition.Partition(g, 16, partition.Options{Seed: 2})
	for v := 0; v < g.NumVertices(); v++ {
		if v%24 < 6 {
			g.VWgt[v] = 10
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		parmetis.AdaptiveRepart(g, 16, old, parmetis.DefaultOptions())
	}
}

// BenchmarkMesherUniform measures the advancing front mesher.
func BenchmarkMesherUniform(b *testing.B) {
	box := mesh.Box{Hi: mesh.Vec3{X: 1, Y: 1, Z: 1}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := mesh.Generate(box, mesh.Uniform{Size: 0.2}, mesh.DefaultMesherConfig())
		b.ReportMetric(float64(m.NumTets()), "tets")
	}
}

// BenchmarkMesherCrack measures the mesher under crack refinement.
func BenchmarkMesherCrack(b *testing.B) {
	box := mesh.Box{Hi: mesh.Vec3{X: 1, Y: 1, Z: 1}}
	crack := mesh.Crack{Origin: mesh.Vec3{}, Dir: mesh.Vec3{X: 1, Y: 1, Z: 1}.Scale(1 / mesh.Vec3{X: 1, Y: 1, Z: 1}.Norm()),
		Length: 0.7, Radius: 0.3, HMin: 0.09, HMax: 0.35}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := mesh.Generate(box, crack, mesh.DefaultMesherConfig())
		b.ReportMetric(float64(m.NumTets()), "tets")
	}
}

// BenchmarkHybrid regenerates the end-to-end hybrid experiment (the paper's
// §6 future-work direction): asynchronous refinement phases alternating
// with loosely synchronous solver phases under three balancing regimes.
func BenchmarkHybrid(b *testing.B) {
	cfg := bench.DefaultHybridConfig()
	cfg.NumPhases = 4
	cfg.SolveIters = 5
	mc := bench.BuildHybridCosts(cfg)
	for _, sys := range bench.HybridSystems {
		b.Run(sys, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := bench.RunHybrid(sys, cfg, mc)
				if err != nil {
					b.Fatal(err)
				}
				report(b, r)
			}
		})
	}
}

// BenchmarkAblationAutoWaterMark compares the fixed explicit-mode water-mark
// with the runtime-derived one (paper §4.2's proposed optimization,
// implemented here).
func BenchmarkAblationAutoWaterMark(b *testing.B) {
	spec, _ := bench.FigureByID(4)
	w := bench.PaperWorkload(spec, benchProcs, benchUPP)
	for _, auto := range []bool{false, true} {
		b.Run(fmt.Sprintf("auto=%v", auto), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := bench.DefaultPremaConfig(ilb.Explicit, true)
				cfg.WS.AutoWaterMark = auto
				r, err := bench.RunPrema(w, cfg)
				if err != nil {
					b.Fatal(err)
				}
				report(b, r)
			}
		})
	}
}

// BenchmarkScalability sweeps the machine size at fixed per-processor work
// (weak scaling, beyond the paper): PREMA's asynchronous balancing should
// hold its relative advantage as processors grow, while the centralized
// stop-and-repartition baseline pays growing synchronization costs.
func BenchmarkScalability(b *testing.B) {
	spec, _ := bench.FigureByID(4)
	for _, procs := range []int{16, 32, 64, 128} {
		w := bench.PaperWorkload(spec, procs, 32)
		for _, sys := range []string{"prema-implicit", "parmetis"} {
			b.Run(fmt.Sprintf("procs%d/%s", procs, sys), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					r, err := bench.RunSystem(sys, w)
					if err != nil {
						b.Fatal(err)
					}
					report(b, r)
				}
			})
		}
	}
}

// BenchmarkPolicySuite compares PREMA's shipped policies (§4: work stealing,
// Cybenko diffusion, Wu multi-list scheduling) on the Figure 3 workload.
func BenchmarkPolicySuite(b *testing.B) {
	spec, _ := bench.FigureByID(3)
	w := bench.PaperWorkload(spec, benchProcs, benchUPP)
	for _, name := range bench.PolicyNames {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := bench.RunPremaPolicy(w, name)
				if err != nil {
					b.Fatal(err)
				}
				report(b, r)
			}
		})
	}
}
