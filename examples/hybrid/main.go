// Hybrid: the paper's future-work vision (§6), implemented — an end-to-end
// application alternating *asynchronous, highly adaptive* phases (parallel
// mesh refinement around a moving crack) with *loosely synchronous* phases
// (an iterative field solver with a global reduction per sweep).
//
// Neither load balancing style suffices alone:
//
//   - stop-and-repartition balances the solver but leaves refinement
//     imbalanced (and cannot predict where the crack goes);
//   - PREMA work stealing balances refinement as it happens but leaves the
//     solver running on whatever placement stealing produced, and a
//     barrier-paced solver runs at the pace of its most loaded processor.
//
// The unified method — steal during refinement, repartition before each
// solve — beats both.
//
// Run: go run ./examples/hybrid
package main

import (
	"fmt"

	"prema/internal/bench"
)

func main() {
	cfg := bench.DefaultHybridConfig()
	fmt.Printf("hybrid end-to-end application: %d procs, %d subdomains, %d phases "+
		"(refine -> solve x%d)\n\n", cfg.Procs, cfg.NumSubdomains(), cfg.NumPhases, cfg.SolveIters)
	mc := bench.BuildHybridCosts(cfg)

	type row struct {
		name string
		r    *bench.Result
	}
	var rows []row
	for _, sys := range bench.HybridSystems {
		r, err := bench.RunHybrid(sys, cfg, mc)
		if err != nil {
			panic(err)
		}
		rows = append(rows, row{sys, r})
	}
	fmt.Printf("%-22s %12s %16s\n", "regime", "makespan", "sync+partition")
	for _, rw := range rows {
		fmt.Printf("%-22s %11.1fs %14.1f%%\n", rw.name, rw.r.Makespan.Seconds(), rw.r.SyncPct())
	}
	uni := rows[2].r.Makespan.Seconds()
	fmt.Printf("\nunified vs repartition-only: %+.1f%%\n", 100*(uni-rows[0].r.Makespan.Seconds())/rows[0].r.Makespan.Seconds())
	fmt.Printf("unified vs prema-only:       %+.1f%%\n", 100*(uni-rows[1].r.Makespan.Seconds())/rows[1].r.Makespan.Seconds())
}
