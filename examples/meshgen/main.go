// Meshgen: drive the real 3-D advancing front tetrahedral mesher directly —
// first on a uniform sizing field, then with a crack-refined field — and
// show how the moving crack concentrates elements (and therefore
// computational weight) in a few subdomains, which is exactly the load
// balancing problem the PREMA experiments quantify.
//
// Run: go run ./examples/meshgen
package main

import (
	"fmt"

	"prema/internal/mesh"
)

func main() {
	domain := mesh.Box{Lo: mesh.Vec3{X: 0, Y: 0, Z: 0}, Hi: mesh.Vec3{X: 2, Y: 1, Z: 1}}

	fmt.Println("uniform sizing, whole domain:")
	m := mesh.Generate(domain, mesh.Uniform{Size: 0.25}, mesh.DefaultMesherConfig())
	fmt.Printf("  h=0.25: %6d vertices, %6d tets (%d defects)\n", len(m.Verts), m.NumTets(), m.Defects)

	// A crack growing along the domain diagonal.
	diag := domain.Size()
	crack := mesh.Crack{
		Origin: domain.Lo,
		Dir:    diag.Scale(1 / diag.Norm()),
		Length: 0.5 * diag.Norm(),
		Radius: 0.3,
		HMin:   0.06,
		HMax:   0.3,
	}
	fmt.Printf("\ncrack to 50%% of the diagonal (tip at %.2f,%.2f,%.2f):\n",
		crack.Tip().X, crack.Tip().Y, crack.Tip().Z)

	// Decompose into 4x2x2 subdomains and mesh each independently — the
	// units of work the parallel mesher distributes as mobile objects.
	subs := mesh.Decompose(domain, 4, 2, 2)
	maxTets, minTets := 0, 1<<60
	for i, b := range subs {
		sm := mesh.Generate(b, crack, mesh.DefaultMesherConfig())
		n := sm.NumTets()
		if n > maxTets {
			maxTets = n
		}
		if n < minTets {
			minTets = n
		}
		bar := ""
		for j := 0; j < n/50; j++ {
			bar += "#"
		}
		fmt.Printf("  subdomain %2d (center %.2f,%.2f,%.2f): %5d tets %s\n",
			i, b.Center().X, b.Center().Y, b.Center().Z, n, bar)
	}
	fmt.Printf("\nheaviest subdomain / lightest = %.1fx — and the crack moves "+
		"every iteration.\nThat ratio is the load imbalance the runtime has to fix; "+
		"run cmd/meshgen for the full experiment.\n", float64(maxTets)/float64(minTets))
}
