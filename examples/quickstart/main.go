// Quickstart: the paper's Figure 2 example — performing a task over every
// node of a tree — ported from sequential code to the PREMA runtime.
//
// Sequential version (top of Figure 2):
//
//	func (n *treeNode) doWork() {
//		if n.left != nil  { n.left.doWork() }
//		if n.right != nil { n.right.doWork() }
//		// ... do more work here for the local node ...
//	}
//
// PREMA version (bottom of Figure 2): local pointers between tree nodes
// become mobile pointers, and direct calls become messages that invoke
// do_work_handler at whichever processor currently hosts the node. The
// runtime is then free to migrate nodes for load balance; the traversal
// code does not change.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"

	"prema/internal/core"
	"prema/internal/dmcs"
	"prema/internal/ilb"
	"prema/internal/mol"
	"prema/internal/policy"
	"prema/internal/sim"
)

// treeNode is the application datum registered as a mobile object. Children
// are held by mobile pointer, never by memory address, so the tree stays
// traversable as nodes migrate between processors.
type treeNode struct {
	depth       int
	left, right mol.MobilePtr
}

const (
	procs     = 4
	treeDepth = 6
	nodeWork  = 50 * sim.Millisecond
)

func main() {
	e := sim.NewEngine(sim.Config{Seed: 7})
	total := 1<<(treeDepth+1) - 1 // nodes in a complete binary tree

	for p := 0; p < procs; p++ {
		e.Spawn(fmt.Sprintf("p%d", p), func(proc *sim.Proc) {
			opts := core.DefaultOptions(ilb.Implicit)
			opts.LB.WaterMark = 0.1
			opts.Policy = policy.NewWorkStealing(policy.DefaultWSConfig())
			r := core.NewRuntime(proc, opts)

			visited := 0
			var hDone dmcs.HandlerID
			hDone = r.Comm().Register(func(c *dmcs.Comm, src int, data any, size int) {
				visited++
				if visited == total {
					fmt.Printf("all %d nodes visited; makespan %v\n", total, proc.Now())
					r.StopAll()
				}
			})

			// do_work_handler: runs at the node's current host. It forwards
			// the traversal to the children through their mobile pointers
			// (ilb_message in the paper's API), then does the local work.
			var hWork mol.HandlerID
			hWork = r.RegisterHandler(func(l *mol.Layer, obj *mol.Object, src int, data any, size int) {
				node := obj.Data.(*treeNode)
				if !node.left.IsNil() {
					r.Message(node.left, hWork, nil, 8, nodeWork.Seconds())
				}
				if !node.right.IsNil() {
					r.Message(node.right, hWork, nil, 8, nodeWork.Seconds())
				}
				r.Compute(nodeWork) // ... do more work here for local node ...
				r.Comm().SendTagged(0, hDone, nil, 8, sim.TagApp)
			})

			// Processor 0 builds the whole tree locally — a deliberately
			// terrible initial distribution that the work stealing policy
			// must fix at runtime.
			if proc.ID() == 0 {
				var build func(depth int) mol.MobilePtr
				build = func(depth int) mol.MobilePtr {
					n := &treeNode{depth: depth, left: mol.Nil, right: mol.Nil}
					if depth < treeDepth {
						n.left = build(depth + 1)
						n.right = build(depth + 1)
					}
					return r.Register(n, 256)
				}
				root := build(0)
				r.Message(root, hWork, nil, 8, nodeWork.Seconds())
			}
			r.Run()

			if proc.ID() == 0 {
				fmt.Printf("proc 0 migrations out: %d\n", r.Mol().Stats.MigrationsOut)
			}
		})
	}
	if err := e.Run(); err != nil {
		panic(err)
	}

	fmt.Println("\nper-processor computation (work started on processor 0 only):")
	serial := sim.Time(total) * nodeWork
	for i := 0; i < procs; i++ {
		a := e.Proc(i).Account()
		fmt.Printf("  p%d: compute %v, idle %v\n", i, a[sim.CatCompute], a[sim.CatIdle])
	}
	fmt.Printf("serial time %v, parallel makespan %v (%.1fx speedup)\n",
		serial, e.Makespan(), serial.Seconds()/e.Makespan().Seconds())
}
