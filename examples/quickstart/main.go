// Quickstart: the paper's Figure 2 example — performing a task over every
// node of a tree — ported from sequential code to the PREMA runtime.
//
// Sequential version (top of Figure 2):
//
//	func (n *treeNode) doWork() {
//		if n.left != nil  { n.left.doWork() }
//		if n.right != nil { n.right.doWork() }
//		// ... do more work here for the local node ...
//	}
//
// PREMA version (bottom of Figure 2): local pointers between tree nodes
// become mobile pointers, and direct calls become messages that invoke
// do_work_handler at whichever processor currently hosts the node. The
// runtime is then free to migrate nodes for load balance; the traversal
// code does not change.
//
// The application body is written against substrate.Endpoint, so the same
// code runs on the deterministic simulator (default) or with genuine
// parallelism — one goroutine per processor — on the real-concurrency
// backend:
//
//	go run ./examples/quickstart                  # deterministic simulator
//	go run ./examples/quickstart -backend=real    # goroutine backend
package main

import (
	"flag"
	"fmt"
	"os"

	"prema/internal/core"
	"prema/internal/dmcs"
	"prema/internal/ilb"
	"prema/internal/mol"
	"prema/internal/policy"
	"prema/internal/rtm"
	"prema/internal/sim"
	"prema/internal/substrate"
)

// treeNode is the application datum registered as a mobile object. Children
// are held by mobile pointer, never by memory address, so the tree stays
// traversable as nodes migrate between processors.
type treeNode struct {
	depth       int
	left, right mol.MobilePtr
}

const (
	procs     = 4
	treeDepth = 6
	nodeWork  = 50 * substrate.Millisecond
	seed      = 7
)

func newMachine(backend string, timescale float64, spin bool) substrate.Machine {
	switch backend {
	case "sim":
		return sim.NewMachine(sim.Config{Seed: seed})
	case "real":
		cfg := rtm.DefaultConfig()
		cfg.Seed = seed
		cfg.TimeScale = timescale
		cfg.Spin = spin
		return rtm.New(cfg)
	default:
		fmt.Fprintf(os.Stderr, "unknown backend %q (want sim or real)\n", backend)
		os.Exit(2)
		return nil
	}
}

func main() {
	backend := flag.String("backend", "sim", "execution substrate: sim (deterministic) | real (goroutines)")
	timescale := flag.Float64("timescale", 1e-3, "real backend: wall seconds per virtual second")
	spin := flag.Bool("spin", false, "real backend: busy-wait instead of sleeping")
	flag.Parse()

	m := newMachine(*backend, *timescale, *spin)
	total := 1<<(treeDepth+1) - 1 // nodes in a complete binary tree

	for p := 0; p < procs; p++ {
		m.Spawn(fmt.Sprintf("p%d", p), func(ep substrate.Endpoint) {
			opts := core.DefaultOptions(ilb.Implicit)
			opts.LB.WaterMark = 0.1
			opts.Policy = policy.NewWorkStealing(policy.DefaultWSConfig())
			r := core.NewRuntime(ep, opts)

			visited := 0
			var hDone dmcs.HandlerID
			hDone = r.Comm().Register(func(c *dmcs.Comm, src int, data any, size int) {
				visited++
				if visited == total {
					fmt.Printf("all %d nodes visited; makespan %v\n", total, ep.Now())
					r.StopAll()
				}
			})

			// do_work_handler: runs at the node's current host. It forwards
			// the traversal to the children through their mobile pointers
			// (ilb_message in the paper's API), then does the local work.
			var hWork mol.HandlerID
			hWork = r.RegisterHandler(func(l *mol.Layer, obj *mol.Object, src int, data any, size int) {
				node := obj.Data.(*treeNode)
				if !node.left.IsNil() {
					r.Message(node.left, hWork, nil, 8, nodeWork.Seconds())
				}
				if !node.right.IsNil() {
					r.Message(node.right, hWork, nil, 8, nodeWork.Seconds())
				}
				r.Compute(nodeWork) // ... do more work here for local node ...
				r.Comm().SendTagged(0, hDone, nil, 8, substrate.TagApp)
			})

			// Processor 0 builds the whole tree locally — a deliberately
			// terrible initial distribution that the work stealing policy
			// must fix at runtime.
			if ep.ID() == 0 {
				var build func(depth int) mol.MobilePtr
				build = func(depth int) mol.MobilePtr {
					n := &treeNode{depth: depth, left: mol.Nil, right: mol.Nil}
					if depth < treeDepth {
						n.left = build(depth + 1)
						n.right = build(depth + 1)
					}
					return r.Register(n, 256)
				}
				root := build(0)
				r.Message(root, hWork, nil, 8, nodeWork.Seconds())
			}
			r.Run()

			if ep.ID() == 0 {
				fmt.Printf("proc 0 migrations out: %d\n", r.Mol().Stats.MigrationsOut)
			}
		})
	}
	if err := m.Run(); err != nil {
		panic(err)
	}

	fmt.Println("\nper-processor computation (work started on processor 0 only):")
	serial := substrate.Time(total) * nodeWork
	for i := 0; i < procs; i++ {
		a := m.Account(i)
		fmt.Printf("  p%d: compute %v, idle %v\n", i, a[substrate.CatCompute], a[substrate.CatIdle])
	}
	fmt.Printf("serial time %v, parallel makespan %v (%.1fx speedup)\n",
		serial, m.Makespan(), serial.Seconds()/m.Makespan().Seconds())
}
