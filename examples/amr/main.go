// AMR: a miniature parallel adaptive mesh refinement loop — the workload
// class the paper is about. A grid of subdomains (mobile objects) is
// refined over a number of iterations; each iteration a localized
// "interesting region" (think crack tip, shock front, flame sheet) sits
// somewhere else, so the computational weight of a subdomain changes
// drastically and unpredictably between iterations. Hints lag reality by
// one iteration.
//
// The example runs the same workload twice — PREMA with explicit polling
// and PREMA with implicit (preemptive) load balancing — and prints the
// makespans, reproducing the paper's core observation at laptop scale.
//
// The refinement loop is written against substrate.Endpoint, so it runs
// unchanged on the deterministic simulator (default) or on the
// real-concurrency goroutine backend:
//
//	go run ./examples/amr                  # deterministic simulator
//	go run ./examples/amr -backend=real    # goroutine backend
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"prema/internal/core"
	"prema/internal/dmcs"
	"prema/internal/ilb"
	"prema/internal/mol"
	"prema/internal/policy"
	"prema/internal/rtm"
	"prema/internal/sim"
	"prema/internal/substrate"
)

const (
	procs      = 8
	subdomains = 64
	iterations = 6
	lightWork  = 40 * substrate.Millisecond
	heavyWork  = 640 * substrate.Millisecond
	spikeSize  = 8 // subdomains inside the interesting region
)

var (
	backend   = flag.String("backend", "sim", "execution substrate: sim (deterministic) | real (goroutines)")
	timescale = flag.Float64("timescale", 1e-3, "real backend: wall seconds per virtual second")
	spin      = flag.Bool("spin", false, "real backend: busy-wait instead of sleeping")
)

// weight returns the true refinement cost of a subdomain at an iteration:
// a contiguous block of spikeSize subdomains (at a pseudo-random offset per
// iteration) is 16x heavier than the rest.
func weight(spikes []int, sub, iter int) substrate.Time {
	off := spikes[iter]
	pos := sub - off
	if pos < 0 {
		pos += subdomains
	}
	if pos < spikeSize {
		return heavyWork
	}
	return lightWork
}

func newMachine() substrate.Machine {
	switch *backend {
	case "sim":
		return sim.NewMachine(sim.Config{Seed: 4})
	case "real":
		cfg := rtm.DefaultConfig()
		cfg.Seed = 4
		cfg.TimeScale = *timescale
		cfg.Spin = *spin
		return rtm.New(cfg)
	default:
		fmt.Fprintf(os.Stderr, "unknown backend %q (want sim or real)\n", *backend)
		os.Exit(2)
		return nil
	}
}

func run(mode ilb.Mode) substrate.Time {
	rng := rand.New(rand.NewSource(3))
	spikes := make([]int, iterations)
	for i := range spikes {
		spikes[i] = rng.Intn(subdomains)
	}

	m := newMachine()
	for p := 0; p < procs; p++ {
		m.Spawn(fmt.Sprintf("p%d", p), func(ep substrate.Endpoint) {
			opts := core.DefaultOptions(mode)
			opts.LB.WaterMark = 0.2
			ws := policy.DefaultWSConfig()
			ws.MaxObjects = 1
			opts.Policy = policy.NewWorkStealing(ws)
			// A "well-tuned" refinement loop: the application only posts a
			// poll every 4 subdomain refinements. Explicit balancing decays;
			// implicit balancing does not care.
			opts.LB.PollEvery = 4
			r := core.NewRuntime(ep, opts)

			finished := 0
			var hDone dmcs.HandlerID
			hDone = r.Comm().Register(func(c *dmcs.Comm, src int, data any, size int) {
				finished++
				if finished == subdomains {
					r.StopAll()
				}
			})
			var hRefine mol.HandlerID
			hRefine = r.RegisterHandler(func(l *mol.Layer, obj *mol.Object, src int, data any, size int) {
				sub := obj.Data.(int)
				iter := data.(int)
				w := weight(spikes, sub, iter)
				r.Compute(w)
				if iter+1 < iterations {
					// Chain the next refinement; the only hint available is
					// this iteration's cost — the persistence guess the
					// moving spike keeps breaking.
					r.Message(obj.MP, hRefine, iter+1, 16, w.Seconds())
					return
				}
				r.Comm().SendTagged(0, hDone, nil, 8, substrate.TagApp)
			})
			for sub := 0; sub < subdomains; sub++ {
				if sub*procs/subdomains == ep.ID() {
					mp := r.Register(sub, 32<<10)
					r.Message(mp, hRefine, 0, 16, lightWork.Seconds())
				}
			}
			r.Run()
		})
	}
	if err := m.Run(); err != nil {
		panic(err)
	}
	return m.Makespan()
}

func main() {
	flag.Parse()
	total := substrate.Time(0)
	// Ideal: all iterations' work spread perfectly.
	perIter := substrate.Time(spikeSize)*heavyWork + substrate.Time(subdomains-spikeSize)*lightWork
	total = substrate.Time(iterations) * perIter
	fmt.Printf("workload: %d subdomains x %d iterations, moving 16x spike; ideal %v on %d procs\n",
		subdomains, iterations, total/procs, procs)

	explicit := run(ilb.Explicit)
	implicit := run(ilb.Implicit)
	fmt.Printf("PREMA explicit polling:  makespan %v\n", explicit)
	fmt.Printf("PREMA implicit (preempt): makespan %v\n", implicit)
	fmt.Printf("implicit is %.0f%% faster — balancer messages are served "+
		"mid-refinement instead of waiting for the next poll\n",
		100*(1-implicit.Seconds()/explicit.Seconds()))
}
